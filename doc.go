// Package paremsp is a Go implementation of the two-pass connected component
// labeling (CCL) algorithms of Gupta, Palsetia, Patwary, Agrawal and
// Choudhary, "A New Parallel Algorithm for Two-Pass Connected Component
// Labeling" (IPDPS Workshops 2014): the sequential algorithms CCLREMSP and
// AREMSP built on REM's union-find with splicing, and the portable
// shared-memory parallel algorithm PAREMSP, plus the baselines the paper
// compares against (CCLLRPC, ARUN, RUN, repeated-pass) and a reference
// flood-fill labeler.
//
// # Quick start
//
//	img := paremsp.NewImage(1024, 1024)
//	// ... set img.Pix: 1 = object pixel, 0 = background ...
//	res, err := paremsp.Label(img, paremsp.Options{})
//	if err != nil {
//		log.Fatal(err)
//	}
//	fmt.Println(res.NumComponents, "components")
//	for _, c := range paremsp.ComponentsOf(res.Labels) {
//		fmt.Printf("label %d: area %d, bbox %dx%d\n", c.Label, c.Area, c.Width(), c.Height())
//	}
//
// The default configuration runs PAREMSP across all available CPUs. Set
// Options.Algorithm to pick a specific algorithm and Options.Threads to pin
// the worker count; results are identical partitions for every algorithm
// (8-connectivity), with labels numbered consecutively from 1 in raster
// order of each component's smallest provisional label.
//
// Labeling follows the paper's conventions: binary images store one byte per
// pixel (1 = object, 0 = background), connectivity is 8-connectedness, and
// the result's label 0 means background.
//
// # Algorithms
//
//	paremsp    the paper's parallel algorithm (default); fastest on multi-core
//	aremsp     the paper's best sequential algorithm (pair-row scan + REMSP)
//	cclremsp   decision-tree scan + REMSP (the paper's second sequential)
//	bremsp     bit-packed run scan + REMSP (beyond the paper); fastest
//	           sequential on long-run/blobby rasters and raw-PBM input
//	pbremsp    parallel bremsp (PAREMSP's chunk/merge machinery at run
//	           granularity); fastest overall when input is already packed
//	ccllrpc    Wu-Otoo-Suzuki baseline (decision tree + rank/PC union-find)
//	arun, run  He-Chao-Suzuki rtable baselines
//	classic    Rosenfeld all-neighbor two-pass scan
//	multipass  repeated forward/backward propagation
//	suzuki     table-accelerated multi-pass
//	floodfill  explicit-stack reference labeler
//
// The bit-packed pair (AlgBREMSP, AlgPBREMSP) operates on a Bitmap — 1 bit
// per pixel, 64-bit words, rows padded to whole words — extracting foreground
// runs with math/bits and calling the union-find once per run instead of per
// pixel, then writing the final label map run-by-run. LabelBitmap /
// LabelBitmapInto accept the packed raster directly, and DecodePBMBitmap
// fills one from raw PBM (P4) without materializing a byte raster, since P4
// rows are already bit-packed.
//
// # Streaming and out-of-core statistics
//
// LabelStream labels rasters far larger than memory. The input — a raw PBM
// (P4) or raw PGM (P5) stream — is consumed as fixed-height row bands
// (StreamOptions.BandRows; default 256): each band is labeled with BREMSP's
// run scan in its own label space, consecutive bands are stitched by
// unioning the foreground runs of the two seam rows, and per-component
// statistics (area, bounding box, centroid, run count — see ComponentStats)
// accumulate run-by-run. No label raster is ever materialized, so peak
// memory is O(one band + its equivalence table + the component table),
// independent of image height: a 100k-row raster streams through the few
// megabytes a single band needs.
//
// Band-height guidance: larger bands amortize the per-band flatten and seam
// costs and are faster; smaller bands cap memory. The per-band working set
// is dominated by the equivalence tables at 8 bytes per potential run —
// about 4*width*rows bytes, plus width*rows/8 for the band bitmap and 12
// bytes per actual run — so the default of 256 rows costs ~17 MiB for a
// 16384-pixel-wide raster; at extreme widths shrink the band (a
// 2^20-pixel-wide raster needs rows <= 8 to stay near 32 MiB). Correctness
// is band-height-independent (the test suite checks heights 1, 2, 7, 64 and
// whole-image against in-memory labeling).
//
// cmd/ccstream wires LabelStream to disk, spilling provisional labels to a
// scratch file and rewriting them into a CCL1 label stream once the final
// numbering is known; the service's POST /v1/stats endpoint streams a
// (possibly chunked) upload through the same engine and returns JSON
// statistics.
//
// # Buffer reuse and the service layer
//
// LabelInto is Label writing into caller-provided buffers: a LabelMap
// (reshaped with Reset) and a Scratch holding the union-find equivalence
// arrays. Reusing both across calls makes sustained labeling with the
// paper's algorithms allocation-free, the regime a long-lived server needs.
// internal/service builds on it: an Engine runs LabelInto on a bounded
// worker pool with sync.Pool-managed rasters and backpressure, and its HTTP
// handler (cmd/ccserve) serves POST /v1/label with JSON statistics, PGM/PNG
// label maps, or CCL1 label streams, plus /healthz and /metrics with the
// per-phase timings above as live counters. When the queue is full the
// service answers 429 with a Retry-After derived from the observed mean job
// latency and the current backlog.
//
// The service is fully instrumented: every request carries an X-Request-ID
// (inbound honored, otherwise generated, always echoed), /v1/label responses
// report per-phase durations in a Server-Timing header, /metrics exposes
// lock-free log₂-bucket latency histograms (per-endpoint request duration,
// queue wait, worker service time, per-phase splits) alongside the counters,
// and recent per-request phase traces are retained in a ring buffer dumped
// by GET /debug/requests on the separate ccserve -debug-addr listener, which
// also serves net/http/pprof. Structured slog logging (access lines, job
// lifecycle events) is configured with ccserve -log-level and -log-format.
//
// # Asynchronous jobs
//
// The synchronous endpoints hold their HTTP connection for the whole
// computation; the job API (internal/jobs, enabled by default in ccserve,
// -jobs=false disables) decouples submission from retrieval. POST /v1/jobs
// accepts one image or a multipart/form-data batch and answers 202 with one
// job per image; jobs run in the background on the same engine pool and are
// observable as queued → running → done/failed/canceled via GET
// /v1/jobs/{id}, with
// results fetched from GET /v1/jobs/{id}/result (the /v1/label formats for
// the labels, gray and contours kinds; JSON only for stats and volume) and
// released early with DELETE /v1/jobs/{id}.
//
// A job's ID is the truncated (128-bit) SHA-256 of its request tuple —
// input bytes, output kind, mode (with delta for gray-delta), algorithm,
// connectivity and binarization level (JobKeyMode computes it,
// normalization included; JobKey is the binary-only form it extends) —
// so identical submissions deduplicate to the same job and its cached
// result instead of recomputing; failed and expired jobs are replaced on
// resubmission. Finished jobs are retained in a mutex-sharded store
// (JobStoreOptions: ccserve -job-shards, -job-ttl) until a background
// sweeper evicts them TTL after completion; retained result memory is
// additionally capped (-job-max-bytes, default 512 MiB) with oldest-first
// overflow eviction. Deleting a queued or running job cancels its
// computation, releasing the pool worker. The JobState and JobKind types
// name the wire states and kinds.
//
// # Job durability
//
// The job store has two backends behind one interface pair (job metadata
// and result blobs). The default, ccserve -job-store=memory, keeps both in
// process memory: fastest, nothing survives a restart, and -job-max-bytes
// overflow evicts the oldest finished jobs. -job-store=sqlite (with
// -job-dir) is the durable pair: job metadata is journaled to a
// write-ahead log (a fsynced, crash-truncating JSONL journal — no SQLite
// driver is linked; the name selects the durability semantics) and result
// blobs plus pending inputs live as content-addressed files under
// -job-dir, so -job-max-bytes overflow spills result payloads to disk
// instead of evicting them. The store directory is flock-ed exclusively
// while open: a second process on the same -job-dir fails fast rather than
// interleaving journal appends with the first.
//
// On startup with the durable backend, ccserve recovers before accepting
// traffic: finished jobs come back with their results fetchable
// byte-identical; jobs that were queued or running when the process died
// (SIGKILL included) are resubmitted through the normal admission path and
// run again; jobs whose persisted input is missing or whom the engine
// refuses land in the canceled terminal state with a "recovery:" reason —
// observable, and re-runnable by resubmitting. Metrics split the store's
// footprint (ccserve_jobs_store_mem_bytes / ccserve_jobs_store_disk_bytes)
// and count spills and recovery outcomes (ccserve_jobs_spilled_total,
// ccserve_jobs_recovered_total, ccserve_jobs_recovery_canceled_total);
// ccserve_jobs_journal_errors_total counts journal appends that failed to
// reach disk — the store keeps serving, but nonzero means restart recovery
// may lose or resurrect jobs, so alert on it.
//
// # Operational guarantees
//
// The service's request lifecycle is fault-tolerant end to end. Every
// algorithm has a context-aware entry point (LabelIntoCtx, LabelBitmapIntoCtx,
// StreamOptions.Ctx) that polls ctx.Done() once per 64-row block, cheap
// enough for the hot loops (the perf gate runs with the checks compiled in)
// and frequent enough to stop a canceled labeling within a few row-scans; a
// canceled call leaves its LabelMap/Scratch reusable, so pooled buffers
// survive cancellation. ccserve -request-timeout bounds synchronous requests
// (504 on expiry) and -job-timeout bounds async jobs (terminal state
// canceled, retryable on resubmission); both default to unbounded.
//
// A panic inside a labeling is contained by the worker's recover: the
// request fails (500) or the job fails, the stack goes to the structured
// log, ccserve_worker_panics_total counts it, the worker survives, and the
// buffers the panicking job was mutating are quarantined rather than
// returned to the pools. On SIGTERM/SIGINT ccserve drains: admission flips
// to 503 with Retry-After, /healthz reports 503 draining, queued jobs are
// canceled, running jobs get up to -drain-timeout (default 15s) before
// being force-canceled through their contexts, a drain summary is logged,
// and the process exits 0.
//
// internal/faultinject provides the failpoints (decode-error, worker-stall,
// worker-panic, encode-slow, queue-full; one atomic load when disarmed)
// behind the chaos suite in internal/service and the CCSERVE_FAULTS
// environment variable for manual drills.
//
// # Beyond the paper: gray, 3-D and contour modes
//
// The REMSP machinery generalizes past binary 2-D rasters, and the library
// exposes three extension workloads with the same Into/IntoCtx entry-point
// discipline as the core: LabelGray / LabelGrayDelta label 8-connected
// flat zones of a GrayImage (exact gray value, or values within delta;
// every pixel is labeled — there is no background), LabelVolume labels a
// 26-connected 3-D Volume of binary voxels, and TraceContours walks each
// component's outer boundary into a polyline. Options.Mode (ModeBinary,
// ModeGray, ModeGrayDelta, ModeVolume) names the workload when calling the
// unified entry points LabelGrayIntoCtx / LabelVolumeIntoCtx, which take
// caller-provided buffers and poll ctx like the binary pipeline.
//
// ccserve serves all three behind one request model. Every /v1/* endpoint
// parses ?alg, ?threads, ?conn, ?level, ?mode and ?delta through a single
// shared parser, so a bad parameter fails identically everywhere, as a
// JSON error envelope {"error":{"code","message"}} with a fixed code
// vocabulary (invalid_argument, unsupported_media_type, not_acceptable,
// payload_too_large, queue_full, unavailable, timeout, internal,
// not_found). The endpoint x mode matrix: POST /v1/label serves
// mode=binary (PBM/PGM/PNG in; JSON, PGM, PNG or CCL1 out) and
// mode=gray|gray-delta (P5/PNG in, same outputs), plus ?contours=true to
// attach boundary polylines to JSON responses; POST /v1/volume takes
// concatenated raw-PGM z-slices and returns JSON only; POST /v1/stats is
// binary-only. Async jobs mirror the matrix via ?kind=
// (labels|stats|contours|gray|volume), keyed by JobKeyMode so the same
// bytes under different modes are distinct jobs while binary labels/stats
// IDs stay identical to earlier releases. The ?stats= query parameter was
// renamed ?components=; the old name is accepted for one release and
// logged at warn.
//
// # Reproducing the paper
//
// cmd/paperbench regenerates the evaluation section on synthetic
// surrogates of the paper's datasets: Tables II-IV, Figures 3-5 and a
// weak-scaling experiment directly (-exp), or the declarative experiment
// grid in experiments.json (-grid: algorithms x dataset classes x
// GOMAXPROCS values x repeats), which emits a self-describing JSON report
// with raw per-repeat samples and environment metadata. paperbench
// -analyze digests such a report into per-configuration medians with 95%
// confidence intervals, speedup-vs-threads curves against the best
// sequential baseline, and parallel-efficiency tables — the repo's
// analogue of the paper's scaling figures — and paperbench -diff gates a
// fresh run against a checked-in baseline report (BENCH_pr7.json) under
// the tolerances and allowlist in perf_policy.json. The nightly CI
// workflow runs the full grid as a gating job; per-PR CI runs a reduced,
// non-blocking smoke of the same grid.
package paremsp
