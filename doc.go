// Package paremsp is a Go implementation of the two-pass connected component
// labeling (CCL) algorithms of Gupta, Palsetia, Patwary, Agrawal and
// Choudhary, "A New Parallel Algorithm for Two-Pass Connected Component
// Labeling" (IPDPS Workshops 2014): the sequential algorithms CCLREMSP and
// AREMSP built on REM's union-find with splicing, and the portable
// shared-memory parallel algorithm PAREMSP, plus the baselines the paper
// compares against (CCLLRPC, ARUN, RUN, repeated-pass) and a reference
// flood-fill labeler.
//
// # Quick start
//
//	img := paremsp.NewImage(1024, 1024)
//	// ... set img.Pix: 1 = object pixel, 0 = background ...
//	res, err := paremsp.Label(img, paremsp.Options{})
//	if err != nil {
//		log.Fatal(err)
//	}
//	fmt.Println(res.NumComponents, "components")
//	for _, c := range paremsp.ComponentsOf(res.Labels) {
//		fmt.Printf("label %d: area %d, bbox %dx%d\n", c.Label, c.Area, c.Width(), c.Height())
//	}
//
// The default configuration runs PAREMSP across all available CPUs. Set
// Options.Algorithm to pick a specific algorithm and Options.Threads to pin
// the worker count; results are identical partitions for every algorithm
// (8-connectivity), with labels numbered consecutively from 1 in raster
// order of each component's smallest provisional label.
//
// Labeling follows the paper's conventions: binary images store one byte per
// pixel (1 = object, 0 = background), connectivity is 8-connectedness, and
// the result's label 0 means background.
//
// # Algorithms
//
//	paremsp    the paper's parallel algorithm (default); fastest on multi-core
//	aremsp     the paper's best sequential algorithm (pair-row scan + REMSP)
//	cclremsp   decision-tree scan + REMSP (the paper's second sequential)
//	bremsp     bit-packed run scan + REMSP (beyond the paper); fastest
//	           sequential on long-run/blobby rasters and raw-PBM input
//	pbremsp    parallel bremsp (PAREMSP's chunk/merge machinery at run
//	           granularity); fastest overall when input is already packed
//	ccllrpc    Wu-Otoo-Suzuki baseline (decision tree + rank/PC union-find)
//	arun, run  He-Chao-Suzuki rtable baselines
//	classic    Rosenfeld all-neighbor two-pass scan
//	multipass  repeated forward/backward propagation
//	suzuki     table-accelerated multi-pass
//	floodfill  explicit-stack reference labeler
//
// The bit-packed pair (AlgBREMSP, AlgPBREMSP) operates on a Bitmap — 1 bit
// per pixel, 64-bit words, rows padded to whole words — extracting foreground
// runs with math/bits and calling the union-find once per run instead of per
// pixel, then writing the final label map run-by-run. LabelBitmap /
// LabelBitmapInto accept the packed raster directly, and DecodePBMBitmap
// fills one from raw PBM (P4) without materializing a byte raster, since P4
// rows are already bit-packed.
//
// # Buffer reuse and the service layer
//
// LabelInto is Label writing into caller-provided buffers: a LabelMap
// (reshaped with Reset) and a Scratch holding the union-find equivalence
// arrays. Reusing both across calls makes sustained labeling with the
// paper's algorithms allocation-free, the regime a long-lived server needs.
// internal/service builds on it: an Engine runs LabelInto on a bounded
// worker pool with sync.Pool-managed rasters and backpressure, and its HTTP
// handler (cmd/ccserve) serves POST /v1/label with JSON statistics, PGM/PNG
// label maps, or CCL1 label streams, plus /healthz and /metrics with the
// per-phase timings above as live counters.
package paremsp
