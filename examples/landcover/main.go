// Land-cover region analysis: the NLCD workload class of the paper's
// scaling experiments. A large synthetic land-cover raster is labeled with
// PAREMSP at several thread counts, demonstrating the speedup behaviour of
// Figure 5 and a region-size analysis of the result.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	paremsp "repro"
	"repro/internal/dataset"
)

func main() {
	// ~48 MB of raster: big enough that parallel scan dominates overheads.
	const w, h = 7168, 7168
	fmt.Printf("generating %dx%d land-cover raster (%.1f MB)...\n", w, h, float64(w*h)/(1<<20))
	img := dataset.LandCover(w, h, 160, 0.5, 2026)
	fmt.Printf("foreground density %.3f\n\n", img.Density())

	maxThreads := runtime.GOMAXPROCS(0)
	var seqTime time.Duration
	fmt.Println("threads  total      scan       merge     speedup(total)  speedup(scan)")
	var seqScan time.Duration
	for threads := 1; threads <= maxThreads; threads *= 2 {
		res, err := paremsp.Label(img, paremsp.Options{Threads: threads})
		if err != nil {
			log.Fatal(err)
		}
		total := res.Phases.Total()
		if threads == 1 {
			seqTime = total
			seqScan = res.Phases.Scan
		}
		fmt.Printf("%7d  %-9v  %-9v  %-8v  %-14.2f  %.2f\n",
			threads, total.Round(time.Millisecond), res.Phases.Scan.Round(time.Millisecond),
			res.Phases.Merge.Round(time.Millisecond),
			seqTime.Seconds()/total.Seconds(), seqScan.Seconds()/res.Phases.Scan.Seconds())
	}

	res, err := paremsp.Label(img, paremsp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	comps := paremsp.ComponentsOf(res.Labels)

	// Region-size report: how much of the land cover sits in large regions?
	var large, total int
	largest := 0
	for _, c := range comps {
		total += c.Area
		if c.Area >= 10000 {
			large += c.Area
		}
		if c.Area > largest {
			largest = c.Area
		}
	}
	fmt.Printf("\n%d regions; largest covers %.1f%% of the foreground; regions >= 10k px cover %.1f%%\n",
		len(comps), 100*float64(largest)/float64(total), 100*float64(large)/float64(total))
}
