// Gray-level region analysis: the grayscale extension the paper claims for
// its algorithms. A quantized elevation raster is segmented into iso-level
// regions with exact-equality labeling, then re-segmented with a tolerance
// (delta) to show how the tolerance merges stepped terraces into slopes.
package main

import (
	"fmt"
	"math"
	"runtime"
	"time"

	paremsp "repro"
)

func main() {
	const w, h = 1536, 1024
	img := paremsp.NewGrayImage(w, h)
	// Synthetic terrain: two ridges plus a radial basin, quantized to 16
	// elevation bands (quantization is what makes equality segmentation
	// meaningful).
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			fx, fy := float64(x)/float64(w), float64(y)/float64(h)
			v := 0.5*math.Sin(4*math.Pi*fx)*math.Cos(2*math.Pi*fy) +
				0.5*math.Exp(-8*((fx-0.5)*(fx-0.5)+(fy-0.5)*(fy-0.5)))
			band := uint8((v + 1) / 2 * 15)
			img.Pix[y*w+x] = band * 16 // bands at 0, 16, 32, ...
		}
	}

	start := time.Now()
	lmSeq, nSeq := paremsp.LabelGray(img)
	seqTime := time.Since(start)

	start = time.Now()
	lmPar, nPar := paremsp.LabelGrayParallel(img, runtime.GOMAXPROCS(0))
	parTime := time.Since(start)

	fmt.Printf("terrain %dx%d, 16 elevation bands\n", w, h)
	fmt.Printf("iso-level regions: %d (sequential %v, parallel %v, speedup %.1fx)\n",
		nSeq, seqTime.Round(time.Millisecond), parTime.Round(time.Millisecond),
		seqTime.Seconds()/parTime.Seconds())
	if err := paremsp.Equivalent(lmSeq, lmPar); err != nil || nSeq != nPar {
		fmt.Println("WARNING: sequential and parallel disagree:", err)
		return
	}

	// Region-size profile of the exact segmentation.
	comps := paremsp.ComponentsOf(lmSeq)
	big := 0
	for _, c := range comps {
		if c.Area >= 1000 {
			big++
		}
	}
	fmt.Printf("regions >= 1000 px: %d of %d\n\n", big, len(comps))

	// Tolerance sweep: merging adjacent bands (delta 16 joins neighbors one
	// band apart, etc.) collapses terraces into slopes.
	fmt.Println("delta   regions")
	for _, delta := range []uint8{0, 15, 16, 32, 64} {
		_, n := paremsp.LabelGrayDelta(img, delta)
		fmt.Printf("%5d   %d\n", delta, n)
	}
}
