// Particle analysis: the medical-imaging / automated-inspection workload the
// paper's introduction motivates. A synthetic micrograph of cell-like blobs
// is labeled, then the component statistics drive a size-distribution report
// and an outlier screen — the kind of downstream analysis CCL feeds.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	paremsp "repro"
	"repro/internal/dataset"
)

func main() {
	const w, h = 1024, 768
	img := dataset.Blobs(w, h, 120, 3, 14, 42)

	start := time.Now()
	res, err := paremsp.Label(img, paremsp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	comps := paremsp.ComponentsOf(res.Labels)
	fmt.Printf("micrograph %dx%d: %d particles labeled in %v\n", w, h, len(comps), elapsed)
	fmt.Printf("phases: scan %v, merge %v, flatten %v, relabel %v\n\n",
		res.Phases.Scan, res.Phases.Merge, res.Phases.Flatten, res.Phases.Relabel)

	// Size distribution.
	areas := make([]int, len(comps))
	total := 0
	for i, c := range comps {
		areas[i] = c.Area
		total += c.Area
	}
	sort.Ints(areas)
	fmt.Printf("particle areas: min %d, median %d, max %d, mean %.1f px\n",
		areas[0], areas[len(areas)/2], areas[len(areas)-1], float64(total)/float64(len(areas)))

	// Outlier screen: merged clusters show up as area or extent outliers.
	medianArea := areas[len(areas)/2]
	fmt.Println("\nflagged particles (area > 3x median, or sprawling bbox):")
	flagged := 0
	for _, c := range comps {
		if c.Area > 3*medianArea || (c.Extent() < 0.5 && c.Area > medianArea) {
			fmt.Printf("  label %4d: area %5d, bbox %3dx%-3d, extent %.2f at (%.0f, %.0f)\n",
				c.Label, c.Area, c.Width(), c.Height(), c.Extent(), c.CentroidX, c.CentroidY)
			flagged++
		}
	}
	if flagged == 0 {
		fmt.Println("  none")
	}

	// Density histogram by power-of-two area buckets.
	fmt.Println("\narea histogram (2^k buckets):")
	hist := map[int]int{}
	for _, a := range areas {
		k := 0
		for v := a; v > 1; v >>= 1 {
			k++
		}
		hist[k]++
	}
	keys := make([]int, 0, len(hist))
	for k := range hist {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		fmt.Printf("  area %4d..%-4d: %s (%d)\n", 1<<k, 1<<(k+1)-1, bar(hist[k]), hist[k])
	}
}

func bar(n int) string {
	if n > 60 {
		n = 60
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = '#'
	}
	return string(b)
}
