// Porous-medium percolation: 3D cluster analysis, the volumetric workload of
// the paper's related work (3D cluster labeling on networks of workstations,
// medical volumes). A random porous volume is labeled with the 3D extension
// of the paper's two-pass machinery; the analysis asks the classic
// percolation question — does any pore cluster span the volume? — and
// reports the cluster-size distribution around the percolation threshold
// (site percolation on the 26-neighborhood lattice percolates at low
// occupancy; the sweep shows the transition).
package main

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"time"

	paremsp "repro"
)

func buildVolume(side int, porosity float64, seed int64) *paremsp.Volume {
	rng := rand.New(rand.NewSource(seed))
	vol := paremsp.NewVolume(side, side, side)
	for i := range vol.Vox {
		if rng.Float64() < porosity {
			vol.Vox[i] = 1
		}
	}
	return vol
}

func main() {
	const side = 160
	fmt.Printf("porous medium %d^3 (%.1f M voxels), sweep over porosity:\n\n",
		side, float64(side*side*side)/1e6)
	fmt.Println("porosity  clusters  largest%  spanning  label-time(parallel)")
	for _, porosity := range []float64{0.05, 0.10, 0.15, 0.20, 0.30} {
		vol := buildVolume(side, porosity, 7)
		start := time.Now()
		lv, n := paremsp.LabelVolumeParallel(vol, runtime.GOMAXPROCS(0))
		elapsed := time.Since(start)

		sizes := sizesOf(lv, n)
		largest, largestLabel := 0, paremsp.LabelID(0)
		total := 0
		for i, s := range sizes {
			total += s
			if s > largest {
				largest = s
				largestLabel = paremsp.LabelID(i + 1)
			}
		}
		spanning := "no"
		if n > 0 && spansZ(lv, largestLabel) {
			spanning = "YES"
		}
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(largest) / float64(total)
		}
		fmt.Printf("  %.2f    %8d  %7.1f%%  %-8s  %v\n", porosity, n, pct, spanning, elapsed.Round(time.Millisecond))
	}

	// Cluster-size distribution at the most interesting porosity.
	vol := buildVolume(side, 0.15, 7)
	lv, n := paremsp.LabelVolumeParallel(vol, runtime.GOMAXPROCS(0))
	sizes := sizesOf(lv, n)
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	fmt.Printf("\nporosity 0.15: top cluster sizes:")
	for i := 0; i < len(sizes) && i < 8; i++ {
		fmt.Printf(" %d", sizes[i])
	}
	fmt.Println()

	// Cross-check the parallel result against the sequential labeler.
	_, nSeq := paremsp.LabelVolume(vol)
	if nSeq != n {
		fmt.Printf("WARNING: parallel (%d) and sequential (%d) disagree!\n", n, nSeq)
	} else {
		fmt.Printf("parallel and sequential agree: %d clusters\n", n)
	}
}

func sizesOf(lv *paremsp.LabelVolumeMap, n int) []int {
	sizes := make([]int, n)
	for _, v := range lv.L {
		if v != 0 {
			sizes[v-1]++
		}
	}
	return sizes
}

func spansZ(lv *paremsp.LabelVolumeMap, label paremsp.LabelID) bool {
	w, h := lv.W, lv.H
	bottom, top := false, false
	for i := 0; i < w*h; i++ {
		if lv.L[i] == label {
			bottom = true
			break
		}
	}
	base := (lv.D - 1) * w * h
	for i := 0; i < w*h; i++ {
		if lv.L[base+i] == label {
			top = true
			break
		}
	}
	return bottom && top
}
