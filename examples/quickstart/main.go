// Quickstart: build a small binary image, label it with the paper's parallel
// algorithm, and print the label map and per-component statistics.
package main

import (
	"fmt"
	"log"

	paremsp "repro"
)

func main() {
	// A scene with three objects: a ring, a diagonal line (8-connected),
	// and a dot.
	img, err := paremsp.ParseImage(`
		.######...........#
		.#....#..........#.
		.#....#.........#..
		.######........#...
		...............#...
		....##.............
		....##.............`)
	if err != nil {
		log.Fatal(err)
	}

	res, err := paremsp.Label(img, paremsp.Options{}) // default: PAREMSP, all CPUs
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("input (%dx%d, %d object pixels):\n%s\n\n", img.Width, img.Height, img.ForegroundCount(), img)
	fmt.Printf("label map (%d components):\n%s\n\n", res.NumComponents, res.Labels)

	fmt.Println("component statistics:")
	for _, c := range paremsp.ComponentsOf(res.Labels) {
		fmt.Printf("  label %d: area %3d, bbox %2dx%-2d at (%d,%d), centroid (%.1f, %.1f), extent %.2f\n",
			c.Label, c.Area, c.Width(), c.Height(), c.MinX, c.MinY, c.CentroidX, c.CentroidY, c.Extent())
	}

	// The sequential AREMSP computes the identical partition.
	seq, err := paremsp.Label(img, paremsp.Options{Algorithm: paremsp.AlgAREMSP})
	if err != nil {
		log.Fatal(err)
	}
	if err := paremsp.Equivalent(res.Labels, seq.Labels); err != nil {
		log.Fatalf("parallel and sequential disagree: %v", err)
	}
	fmt.Println("\nPAREMSP and AREMSP agree on the partition.")
}
