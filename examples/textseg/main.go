// Character segmentation: the OCR workload the paper's introduction cites
// (character recognition). A synthetic page of glyphs is labeled; each
// component's bounding box is a character candidate, grouped into lines by
// vertical position — the first stage of any OCR pipeline.
package main

import (
	"fmt"
	"log"
	"sort"

	paremsp "repro"
	"repro/internal/dataset"
)

func main() {
	const w, h = 640, 360
	img := dataset.Text(w, h, "PAREMSP LABELS CC", 3, 7)

	res, err := paremsp.Label(img, paremsp.Options{Algorithm: paremsp.AlgAREMSP})
	if err != nil {
		log.Fatal(err)
	}
	comps := paremsp.ComponentsOf(res.Labels)
	fmt.Printf("page %dx%d: %d glyph components\n\n", w, h, len(comps))

	// Group character boxes into text lines by bbox vertical overlap.
	sort.Slice(comps, func(i, j int) bool {
		if comps[i].MinY != comps[j].MinY {
			return comps[i].MinY < comps[j].MinY
		}
		return comps[i].MinX < comps[j].MinX
	})
	type line struct {
		top, bottom int
		glyphs      []paremsp.Component
	}
	var lines []*line
	for _, c := range comps {
		placed := false
		for _, ln := range lines {
			if c.MinY <= ln.bottom && c.MaxY >= ln.top { // vertical overlap
				ln.glyphs = append(ln.glyphs, c)
				if c.MinY < ln.top {
					ln.top = c.MinY
				}
				if c.MaxY > ln.bottom {
					ln.bottom = c.MaxY
				}
				placed = true
				break
			}
		}
		if !placed {
			lines = append(lines, &line{top: c.MinY, bottom: c.MaxY, glyphs: []paremsp.Component{c}})
		}
	}

	for i, ln := range lines {
		sort.Slice(ln.glyphs, func(a, b int) bool { return ln.glyphs[a].MinX < ln.glyphs[b].MinX })
		fmt.Printf("line %d (y %d-%d): %d glyphs\n", i+1, ln.top, ln.bottom, len(ln.glyphs))
		// Estimate inter-character pitch from consecutive box lefts.
		if len(ln.glyphs) > 1 {
			gaps := make([]int, 0, len(ln.glyphs)-1)
			for g := 1; g < len(ln.glyphs); g++ {
				gaps = append(gaps, ln.glyphs[g].MinX-ln.glyphs[g-1].MinX)
			}
			sort.Ints(gaps)
			fmt.Printf("  median pitch %d px; first boxes:", gaps[len(gaps)/2])
			for g := 0; g < len(ln.glyphs) && g < 5; g++ {
				c := ln.glyphs[g]
				fmt.Printf(" (%d,%d %dx%d)", c.MinX, c.MinY, c.Width(), c.Height())
			}
			fmt.Println()
		}
	}
}
